package liveness

import (
	"testing"

	"wormlan/internal/des"
	"wormlan/internal/topology"
)

// FuzzHelloStateMachine drives a single-endpoint monitor with arbitrary
// interleavings of clock advancement and hello arrivals, and checks the
// state-machine contract that every consumer relies on: verdicts strictly
// alternate down/up starting from up, verdict times never decrease,
// Monitor.Up always reflects the latest verdict, and the Stats counters
// stay mutually consistent (a down verdict costs DetectMult misses, a flap
// requires a prior re-admission, hellos at unknown endpoints are ignored).
func FuzzHelloStateMachine(f *testing.F) {
	// Tape language: low nibble = ticks to advance; bit 4 = inject a hello
	// at the registered endpoint; bit 5 = inject a hello at an unknown
	// endpoint (must be a no-op).
	f.Add([]byte{0x10, 8, 0x10, 8, 0x10})                    // healthy cadence
	f.Add([]byte{15, 15, 15})                                // silence through detection
	f.Add([]byte{0x10, 15, 15, 0x10, 2, 0x10, 15, 15, 0x10}) // flap
	f.Add([]byte{0x30, 0x20, 15, 0x18, 1})                   // unknown-endpoint noise
	f.Fuzz(func(t *testing.T, tape []byte) {
		ep := Endpoint{Node: 1, Port: 0, Delay: 4}
		cfg := Config{Interval: 8, Jitter: 1, DetectMult: 2, UpHold: 16}
		m, err := New(cfg, []Endpoint{ep}, func(topology.NodeID, topology.PortID) bool { return true }, nil)
		if err != nil {
			t.Fatal(err)
		}
		verdicts := 0
		prevUp := true // monitor starts believing the peer is up
		lastAt := des.Time(0)
		m.OnVerdict = func(v Verdict) {
			if v.Node != ep.Node || v.Port != ep.Port {
				t.Fatalf("verdict for unregistered endpoint %d.%d", v.Node, v.Port)
			}
			if v.Up == prevUp {
				t.Fatalf("verdict %d: Up=%v repeats the previous belief", verdicts, v.Up)
			}
			if v.At < lastAt {
				t.Fatalf("verdict %d: At=%d before previous verdict at %d", verdicts, v.At, lastAt)
			}
			if !v.Up && !v.FalsePositive {
				t.Fatalf("down verdict at t=%d not classified false-positive under an always-alive oracle", v.At)
			}
			prevUp = v.Up
			lastAt = v.At
			verdicts++
		}
		now := des.Time(0)
		hellos := int64(0)
		for _, b := range tape {
			for k := 0; k < int(b&15); k++ {
				now++
				m.HelloTick(now)
			}
			if b&16 != 0 {
				m.HelloSeen(ep.Node, ep.Port, ep.Delay, now)
				hellos++
			}
			if b&32 != 0 {
				m.HelloSeen(9, 3, 0, now) // unregistered: must change nothing
			}
			if m.Up(ep) != prevUp {
				t.Fatalf("t=%d: Up(ep)=%v disagrees with last verdict (%v)", now, m.Up(ep), prevUp)
			}
		}
		st := m.Stats()
		downs := int64((verdicts + 1) / 2)
		ups := int64(verdicts / 2)
		if st.PeerDowns != downs || st.PeerUps != ups {
			t.Fatalf("stats PeerDowns=%d PeerUps=%d, verdict stream implies %d/%d",
				st.PeerDowns, st.PeerUps, downs, ups)
		}
		if st.HellosSeen != hellos {
			t.Fatalf("stats HellosSeen=%d, injected %d at the registered endpoint", st.HellosSeen, hellos)
		}
		if st.Misses < int64(cfg.DetectMult)*st.PeerDowns {
			t.Fatalf("stats Misses=%d cannot support %d down verdicts at DetectMult=%d",
				st.Misses, st.PeerDowns, cfg.DetectMult)
		}
		if st.FalsePositives != st.PeerDowns {
			t.Fatalf("stats FalsePositives=%d, want %d (oracle always alive)", st.FalsePositives, st.PeerDowns)
		}
		if st.Flaps > st.PeerUps {
			t.Fatalf("stats Flaps=%d exceeds PeerUps=%d: a flap requires a prior re-admission", st.Flaps, st.PeerUps)
		}
	})
}
