package liveness

import (
	"testing"

	"wormlan/internal/des"
	"wormlan/internal/topology"
)

// The tests use one endpoint with tight, round parameters: interval 100,
// jitter 10, detect-mult 3, hold-down 400, link delay 5.  The miss gap is
// therefore 115 and the detect time 335.

// drive advances the monitor tick by tick, delivering hellos at the given
// times.
func drive(m *Monitor, from, to des.Time, hellosAt map[des.Time]bool) {
	for now := from; now <= to; now++ {
		if hellosAt[now] {
			m.HelloSeen(1, 2, 5, now)
		}
		m.HelloTick(now)
	}
}

func TestDefaults(t *testing.T) {
	d := Config{}.WithDefaults()
	if d.Interval != DefaultInterval || d.DetectMult != DefaultDetectMult {
		t.Fatalf("unexpected defaults %+v", d)
	}
	if d.Jitter != DefaultInterval/8 {
		t.Fatalf("jitter default %d", d.Jitter)
	}
	if d.UpHold != 2*des.Time(DefaultDetectMult)*DefaultInterval {
		t.Fatalf("uphold default %d", d.UpHold)
	}
	if err := (Config{Interval: -1}).Validate(); err == nil {
		t.Fatal("negative interval not rejected")
	}
	if got := (Config{Interval: 100, Jitter: 10, DetectMult: 3}).DetectTime(5); got != 5+10+300 {
		t.Fatalf("detect time %d", got)
	}
}

func TestDownAfterDetectMultMisses(t *testing.T) {
	var verdicts []Verdict
	cfg := Config{Interval: 100, Jitter: 10, DetectMult: 3, UpHold: 400, MaxFlapShift: 2}
	m, err := New(cfg, []Endpoint{{Node: 1, Port: 2, Delay: 5}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.OnVerdict = func(v Verdict) { verdicts = append(verdicts, v) }

	// Hellos at 50, 150, then silence.  Last rx 150: first miss at
	// 150+115=265, then 365, then 465 -> down at 465.
	drive(m, 1, 600, map[des.Time]bool{50: true, 150: true})
	if len(verdicts) != 1 {
		t.Fatalf("verdicts %+v", verdicts)
	}
	v := verdicts[0]
	if v.Up || v.Node != 1 || v.Port != 2 || v.At != 465 {
		t.Fatalf("down verdict %+v", v)
	}
	st := m.Stats()
	if st.PeerDowns != 1 || st.Misses != 3 || st.HellosSeen != 2 {
		t.Fatalf("stats %+v", st)
	}
	if m.Up(Endpoint{Node: 1, Port: 2, Delay: 5}) {
		t.Fatal("endpoint still believed up")
	}
	// No ground truth supplied: not classified as a false positive.
	if st.FalsePositives != 0 {
		t.Fatalf("unexpected false positives %+v", st)
	}
}

func TestHelloResetsMissCount(t *testing.T) {
	cfg := Config{Interval: 100, Jitter: 10, DetectMult: 3, UpHold: 400, MaxFlapShift: 2}
	m, err := New(cfg, []Endpoint{{Node: 1, Port: 2, Delay: 5}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	downs := 0
	m.OnVerdict = func(v Verdict) {
		if !v.Up {
			downs++
		}
	}
	// Two misses accrue after the hello at 50 (deadlines 165, 265), then a
	// hello at 300 resets the streak before the third.
	hellos := map[des.Time]bool{50: true, 300: true}
	// Keep feeding hellos every 100 from 400 on so no new streak starts.
	for ts := des.Time(400); ts <= 900; ts += 100 {
		hellos[ts] = true
	}
	drive(m, 1, 900, hellos)
	if downs != 0 {
		t.Fatalf("spurious down verdict after recovered miss streak")
	}
	if st := m.Stats(); st.Misses != 2 || st.PeerDowns != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestReadmissionAfterHoldDown(t *testing.T) {
	cfg := Config{Interval: 100, Jitter: 10, DetectMult: 3, UpHold: 400, MaxFlapShift: 2}
	m, err := New(cfg, []Endpoint{{Node: 1, Port: 2, Delay: 5}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var verdicts []Verdict
	m.OnVerdict = func(v Verdict) { verdicts = append(verdicts, v) }

	// Silence from t=0: misses at 115, 215, 315 -> down at 315.  Hellos
	// resume at 400 and keep coming every 100: candidacy opens at 400,
	// matures at 400+400=800.
	hellos := map[des.Time]bool{}
	for ts := des.Time(400); ts <= 1200; ts += 100 {
		hellos[ts] = true
	}
	drive(m, 1, 1200, hellos)
	if len(verdicts) != 2 {
		t.Fatalf("verdicts %+v", verdicts)
	}
	if verdicts[0].Up || verdicts[0].At != 315 {
		t.Fatalf("down verdict %+v", verdicts[0])
	}
	up := verdicts[1]
	if !up.Up || up.At != 800 {
		t.Fatalf("up verdict %+v", up)
	}
	if st := m.Stats(); st.PeerUps != 1 || st.Flaps != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFlapDampingSuppressionAndBackoff(t *testing.T) {
	cfg := Config{Interval: 100, Jitter: 10, DetectMult: 3, UpHold: 400, MaxFlapShift: 2}
	m, err := New(cfg, []Endpoint{{Node: 1, Port: 2, Delay: 5}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var verdicts []Verdict
	m.OnVerdict = func(v Verdict) { verdicts = append(verdicts, v) }

	hellos := map[des.Time]bool{}
	// Down at 315 (silence from t=0).  A lone hello at 400 opens a
	// candidacy that must collapse (next silence gap > 115) without an up
	// verdict — the damping absorbs the blip.
	hellos[400] = true
	// Steady hellos from 700 re-open candidacy at 700, maturing at 1100.
	for ts := des.Time(700); ts <= 1400; ts += 100 {
		hellos[ts] = true
	}
	// Silence after 1400: misses at 1515, 1615, 1715 -> second down.  The
	// endpoint has been re-admitted once, so this down counts as a flap and
	// doubles the next hold-down: hellos from 1800 mature at 1800+800=2600.
	for ts := des.Time(1800); ts <= 2700; ts += 100 {
		hellos[ts] = true
	}
	drive(m, 1, 2700, hellos)

	st := m.Stats()
	if st.FlapsSuppressed != 1 {
		t.Fatalf("expected one suppressed flap: %+v", st)
	}
	if st.PeerDowns != 2 || st.PeerUps != 2 || st.Flaps != 1 {
		t.Fatalf("stats %+v", st)
	}
	want := []struct {
		at des.Time
		up bool
	}{{315, false}, {1100, true}, {1715, false}, {2600, true}}
	if len(verdicts) != len(want) {
		t.Fatalf("verdicts %+v", verdicts)
	}
	for i, w := range want {
		if verdicts[i].At != w.at || verdicts[i].Up != w.up {
			t.Fatalf("verdict %d = %+v, want %+v", i, verdicts[i], w)
		}
	}
}

func TestFalsePositiveClassification(t *testing.T) {
	// Ground truth says the link is alive, so the down verdict is a false
	// positive.
	cfg := Config{Interval: 100, Jitter: 10, DetectMult: 3, UpHold: 400, MaxFlapShift: 2}
	m, err := New(cfg, []Endpoint{{Node: 1, Port: 2, Delay: 5}},
		func(topology.NodeID, topology.PortID) bool { return true }, nil)
	if err != nil {
		t.Fatal(err)
	}
	var verdicts []Verdict
	m.OnVerdict = func(v Verdict) { verdicts = append(verdicts, v) }
	drive(m, 1, 600, nil)
	if len(verdicts) != 1 || !verdicts[0].FalsePositive {
		t.Fatalf("verdicts %+v", verdicts)
	}
	if st := m.Stats(); st.FalsePositives != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDuplicateEndpointRejected(t *testing.T) {
	ep := Endpoint{Node: 1, Port: 2, Delay: 5}
	if _, err := New(Config{}, []Endpoint{ep, ep}, nil, nil); err == nil {
		t.Fatal("duplicate endpoint accepted")
	}
}
