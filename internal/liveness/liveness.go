// Package liveness implements a BFD-style in-band failure detector for the
// wormhole fabric: every directional link carries periodic hello flits, and
// the receiving end of each link runs a small state machine that declares
// the peer down after a configurable multiplier of missed hellos and
// re-admits it only after a flap-damping hold-down with exponential backoff.
//
// The protocol replaces the fault oracle of internal/fault (which simply
// *knows* when the topology changed) with something the paper's Myrinet
// setting could actually build: adapters and switch control programs
// exchanging liveness probes over the same wires as data.  Because hellos
// share links with data worms under STOP/GO flow control, a congested (not
// dead) link can miss hellos — detection latency, false positives, and
// flapping become measurable protocol outputs rather than modelling
// assumptions.
//
// Determinism: the monitor is driven exclusively from inside the fabric
// tick (HelloSeen / HelloTick), iterates endpoints in construction order,
// draws no randomness, and never reads the wall clock.  Two runs of the
// same seeded configuration produce byte-identical verdict streams.
package liveness

import (
	"fmt"

	"wormlan/internal/des"
	"wormlan/internal/topology"
	"wormlan/internal/trace"
)

// Defaults (byte-times).  At 640 Mb/s one byte-time is 12.5 ns, so the
// default 256-byte-time hello interval is 3.2 µs — aggressive by LAN
// standards but proportionate to worm transmission times in the simulator.
const (
	// DefaultInterval is the hello transmission period per directional link.
	DefaultInterval des.Time = 256
	// DefaultDetectMult is the number of consecutive missed hellos after
	// which the peer is declared down (BFD's detect multiplier).
	DefaultDetectMult = 3
	// DefaultMaxFlapShift caps the exponential growth of the re-admission
	// hold-down: hold = UpHold << min(flaps, MaxFlapShift).
	DefaultMaxFlapShift = 6
)

// Endpoint identifies the receiving end of one directional link: the node
// and port the hellos arrive at, plus the link's propagation delay (which
// the miss deadline must absorb — a hello is not late until interval +
// jitter + delay byte-times after its predecessor).
type Endpoint struct {
	Node  topology.NodeID
	Port  topology.PortID
	Delay des.Time
}

// Config parameterizes the detector.  The zero value of every field selects
// a documented default, so Config{} is a working configuration.
type Config struct {
	// Interval is the hello transmission period (default DefaultInterval).
	Interval des.Time `json:"interval,omitempty"`
	// Jitter is the maximum extra per-hello delay drawn by the sender's
	// seeded rng (default Interval/8).  Jitter desynchronizes the hello
	// phase across links so probe bursts don't self-synchronize.
	Jitter des.Time `json:"jitter,omitempty"`
	// DetectMult is the consecutive misses before a down verdict (default
	// DefaultDetectMult).
	DetectMult int `json:"detectMult,omitempty"`
	// UpHold is the base hold-down: a down endpoint must carry hellos
	// continuously for UpHold << min(flaps, MaxFlapShift) byte-times before
	// it is re-admitted (default 2 * DetectMult * Interval).
	UpHold des.Time `json:"upHold,omitempty"`
	// MaxFlapShift caps the hold-down doubling (default DefaultMaxFlapShift).
	MaxFlapShift int `json:"maxFlapShift,omitempty"`
	// Seed feeds the per-link hello jitter rng.
	Seed uint64 `json:"seed,omitempty"`
}

// WithDefaults returns the config with zero fields replaced by defaults.
func (c Config) WithDefaults() Config {
	out := c
	if out.Interval <= 0 {
		out.Interval = DefaultInterval
	}
	if out.Jitter <= 0 {
		out.Jitter = out.Interval / 8
	}
	if out.DetectMult <= 0 {
		out.DetectMult = DefaultDetectMult
	}
	if out.UpHold <= 0 {
		out.UpHold = 2 * des.Time(out.DetectMult) * out.Interval
	}
	if out.MaxFlapShift <= 0 {
		out.MaxFlapShift = DefaultMaxFlapShift
	}
	return out
}

// Validate rejects configurations the state machine cannot run.
func (c Config) Validate() error {
	if c.Interval < 0 || c.Jitter < 0 || c.DetectMult < 0 || c.UpHold < 0 || c.MaxFlapShift < 0 {
		return fmt.Errorf("liveness: negative config field: %+v", c)
	}
	return nil
}

// DetectTime returns the worst-case detection latency for an endpoint with
// the given link delay: the in-flight allowance plus DetectMult missed
// intervals.
func (c Config) DetectTime(delay des.Time) des.Time {
	d := c.WithDefaults()
	return delay + d.Jitter + d.Interval*des.Time(d.DetectMult)
}

// Verdict is one local up/down decision about the peer behind an endpoint.
type Verdict struct {
	At   des.Time
	Node topology.NodeID
	Port topology.PortID
	// Up is false for a peer-down verdict, true for a re-admission.
	Up bool
	// FalsePositive marks a down verdict against a link that was actually
	// alive (congestion starved the hellos).  Classified against ground
	// truth the protocol itself cannot see; used for statistics only.
	FalsePositive bool
}

// Stats aggregates detector activity.  All fields are counters, so Stats is
// comparable and mergeable by addition.
type Stats struct {
	HellosSeen int64 // hello flits consumed
	Misses     int64 // hello deadlines expired
	PeerDowns  int64 // down verdicts issued
	PeerUps    int64 // re-admissions issued
	// FalsePositives counts down verdicts against links that were actually
	// alive — the congestion-confusion failure mode of in-band detection.
	FalsePositives int64
	// Flaps counts down verdicts against endpoints that had already been
	// re-admitted at least once (each one doubles that endpoint's next
	// hold-down, up to MaxFlapShift).
	Flaps int64
	// FlapsSuppressed counts re-admission candidacies that collapsed before
	// the hold-down matured — the flaps the damping absorbed.
	FlapsSuppressed int64
}

// endpoint is the per-directional-link receiver state machine.
type endpoint struct {
	ep Endpoint
	// missGap is the longest silence a healthy link may show: interval +
	// jitter + propagation delay.
	missGap des.Time

	up     bool
	lastRx des.Time
	// nextMiss is the next hello deadline while up.
	nextMiss des.Time
	misses   int
	// cand marks a down endpoint whose hellos have reappeared; candReady is
	// when the candidacy matures into an up verdict.
	cand      bool
	candStart des.Time
	candReady des.Time
	// flaps counts completed down->up->down cycles, driving the hold-down
	// backoff.  readmitted marks an endpoint that has come back at least
	// once, so its next down verdict counts as a flap.
	flaps      int
	readmitted bool
}

// Monitor runs the per-endpoint state machines.  It implements the fabric's
// HelloSink interface structurally (HelloSeen + HelloTick) without
// importing internal/network.
type Monitor struct {
	cfg Config
	eps []*endpoint
	idx map[Endpoint]int

	// OnVerdict receives every up/down decision, in deterministic endpoint
	// order within a tick.  It runs inside the simulation tick.
	OnVerdict func(Verdict)

	// alive reports ground-truth link liveness for false-positive
	// classification (nil disables classification).
	alive func(topology.NodeID, topology.PortID) bool
	rec   trace.Recorder
	stats Stats
}

// New builds a monitor over the given endpoints (construction order is the
// verdict-iteration order, so callers must pass a deterministic slice —
// network.Fabric.HelloEndpoints is).  alive supplies ground truth for
// false-positive accounting; rec receives hello-missed/peer-down/peer-up/
// flap-suppressed events when non-nil.
func New(cfg Config, eps []Endpoint, alive func(topology.NodeID, topology.PortID) bool, rec trace.Recorder) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.WithDefaults()
	m := &Monitor{cfg: cfg, alive: alive, rec: rec, idx: make(map[Endpoint]int, len(eps))}
	for i, ep := range eps {
		gap := cfg.Interval + cfg.Jitter + ep.Delay
		m.eps = append(m.eps, &endpoint{
			ep:      ep,
			missGap: gap,
			up:      true,
			// Everything starts up with a full deadline: the first hello
			// must arrive within one miss gap of t=0.
			nextMiss: gap,
		})
		if _, dup := m.idx[ep]; dup {
			return nil, fmt.Errorf("liveness: duplicate endpoint %+v", ep)
		}
		m.idx[ep] = i
	}
	return m, nil
}

// Config returns the effective (defaulted) configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Stats returns a snapshot of detector activity.
func (m *Monitor) Stats() Stats { return m.stats }

// Up reports the monitor's current belief about the endpoint.
func (m *Monitor) Up(ep Endpoint) bool {
	i, ok := m.idx[ep]
	return ok && m.eps[i].up
}

// HelloSeen consumes one hello arrival at (node, port).  Called by the
// fabric from inside the tick; unknown endpoints are ignored (a hello can
// race a topology change).
func (m *Monitor) HelloSeen(node topology.NodeID, port topology.PortID, delay des.Time, now des.Time) {
	i, ok := m.idx[Endpoint{Node: node, Port: port, Delay: delay}]
	if !ok {
		return
	}
	e := m.eps[i]
	m.stats.HellosSeen++
	e.lastRx = now
	if e.up {
		e.misses = 0
		e.nextMiss = now + e.missGap
		return
	}
	if !e.cand {
		// Hellos are back: open a re-admission candidacy that matures after
		// the flap-damped hold-down.
		e.cand = true
		e.candStart = now
		e.candReady = now + m.holdDown(e)
	}
}

// holdDown returns the endpoint's current re-admission hold-down.
func (m *Monitor) holdDown(e *endpoint) des.Time {
	shift := e.flaps
	if shift > m.cfg.MaxFlapShift {
		shift = m.cfg.MaxFlapShift
	}
	return m.cfg.UpHold << uint(shift)
}

// HelloTick advances every endpoint's deadline clock.  Called by the fabric
// once per byte-time while the hello protocol runs; endpoints are visited
// in construction order so the verdict stream is deterministic.
func (m *Monitor) HelloTick(now des.Time) {
	for _, e := range m.eps {
		switch {
		case e.up:
			if now < e.nextMiss {
				continue
			}
			e.misses++
			m.stats.Misses++
			if m.rec != nil {
				m.rec.Record(trace.Event{At: now, Kind: trace.EvHelloMissed,
					Node: e.ep.Node, Port: int(e.ep.Port), Arg: int64(e.misses)})
			}
			if e.misses < m.cfg.DetectMult {
				// Subsequent misses accrue one interval apart.
				e.nextMiss = now + m.cfg.Interval
				continue
			}
			m.declareDown(e, now)
		case e.cand:
			if now-e.lastRx > e.missGap {
				// Hellos stopped again before the hold-down matured: the
				// candidacy collapses and the damping has absorbed a flap.
				e.cand = false
				m.stats.FlapsSuppressed++
				if m.rec != nil {
					m.rec.Record(trace.Event{At: now, Kind: trace.EvFlapSuppressed,
						Node: e.ep.Node, Port: int(e.ep.Port)})
				}
				continue
			}
			if now >= e.candReady {
				m.declareUp(e, now)
			}
		}
	}
}

func (m *Monitor) declareDown(e *endpoint, now des.Time) {
	e.up = false
	e.cand = false
	e.misses = 0
	m.stats.PeerDowns++
	if e.readmitted {
		e.flaps++
		m.stats.Flaps++
	}
	fp := m.alive != nil && m.alive(e.ep.Node, e.ep.Port)
	if fp {
		m.stats.FalsePositives++
	}
	if m.rec != nil {
		arg := int64(0)
		if fp {
			arg = 1
		}
		m.rec.Record(trace.Event{At: now, Kind: trace.EvPeerDown,
			Node: e.ep.Node, Port: int(e.ep.Port), Arg: arg})
	}
	if m.OnVerdict != nil {
		m.OnVerdict(Verdict{At: now, Node: e.ep.Node, Port: e.ep.Port, FalsePositive: fp})
	}
}

func (m *Monitor) declareUp(e *endpoint, now des.Time) {
	e.up = true
	e.cand = false
	e.readmitted = true
	e.misses = 0
	e.nextMiss = now + e.missGap
	m.stats.PeerUps++
	if m.rec != nil {
		m.rec.Record(trace.Event{At: now, Kind: trace.EvPeerUp,
			Node: e.ep.Node, Port: int(e.ep.Port), Arg: int64(now - e.candStart)})
	}
	if m.OnVerdict != nil {
		m.OnVerdict(Verdict{At: now, Node: e.ep.Node, Port: e.ep.Port, Up: true})
	}
}
