package wormlan

// Whole-stack integration tests: distributed mapping -> up/down routing ->
// byte-level fabric -> host-adapter protocol -> traffic, with conservation
// invariants (every worm generated is delivered exactly the right number
// of times) and protocol-quiescence checks.

import (
	"testing"
	"testing/quick"

	"wormlan/internal/adapter"
	"wormlan/internal/des"
	"wormlan/internal/mapper"
	"wormlan/internal/multicast"
	"wormlan/internal/network"
	"wormlan/internal/rng"
	"wormlan/internal/route"
	"wormlan/internal/topology"
	"wormlan/internal/traffic"
	"wormlan/internal/updown"
)

// stack is a fully wired LAN: the up/down tree comes from the distributed
// mapper, not the centralized BFS, to exercise the whole control plane.
type stack struct {
	t   *testing.T
	k   *des.Kernel
	g   *topology.Graph
	sys *adapter.System

	uniDelivered int64
	mcDelivered  map[int64]int // transfer ID -> copies delivered
}

func newStack(t *testing.T, g *topology.Graph, acfg adapter.Config) *stack {
	t.Helper()
	s := &stack{t: t, k: des.NewKernel(), g: g, mcDelivered: map[int64]int{}}

	// Control plane: distributed map election, then routing from its root.
	m, err := mapper.Run(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(g, nil); err != nil {
		t.Fatal(err)
	}
	ud, err := updown.New(g, m.Root)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := ud.NewTable(false)
	if err != nil {
		t.Fatal(err)
	}
	f, err := network.New(s.k, g, ud, network.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.sys, err = adapter.NewSystem(s.k, f, tbl, acfg, 77)
	if err != nil {
		t.Fatal(err)
	}
	s.sys.OnAppDeliver = func(d adapter.AppDelivery) {
		if d.Transfer != nil {
			s.mcDelivered[d.Transfer.ID]++
		} else {
			s.uniDelivered++
		}
	}
	return s
}

func (s *stack) addGroup(id int, members []topology.NodeID) *multicast.Group {
	s.t.Helper()
	grp, err := multicast.NewGroup(id, members)
	if err != nil {
		s.t.Fatal(err)
	}
	if _, err := s.sys.AddGroup(grp); err != nil {
		s.t.Fatal(err)
	}
	return grp
}

func (s *stack) quiescent() {
	s.t.Helper()
	for _, h := range s.g.Hosts() {
		c1, c2, dma := s.sys.Adapter(h).Pools()
		if c1.Used != 0 || c2.Used != 0 || (dma != nil && dma.Used != 0) {
			s.t.Fatalf("host %d leaked buffers: %d/%d", h, c1.Used, c2.Used)
		}
	}
}

func TestEndToEndConservationUnderLoad(t *testing.T) {
	// Poisson traffic with the full reliable protocol on the torus: every
	// generated worm must be delivered exactly once (unicast) or once per
	// group member (multicast), and the system must drain to quiescence.
	g := topology.Torus(3, 3, 1, 1)
	s := newStack(t, g, adapter.Config{Mode: adapter.ModeCircuit, CutThrough: true})
	hosts := g.Hosts()
	grpA := s.addGroup(0, hosts[:5])
	grpB := s.addGroup(1, hosts[4:])
	groupsOf := map[topology.NodeID][]int{}
	for _, h := range grpA.Members {
		groupsOf[h] = append(groupsOf[h], 0)
	}
	for _, h := range grpB.Members {
		groupsOf[h] = append(groupsOf[h], 1)
	}
	gen, err := traffic.New(s.k, traffic.Config{
		OfferedLoad:   0.02,
		MeanWorm:      300,
		MulticastProb: 0.2,
		Until:         150_000,
	}, hosts, groupsOf, s.sys, 5)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start()
	if err := s.k.Run(0); err != nil {
		t.Fatal(err)
	}
	worms, mcs, _ := gen.Generated()
	if worms == 0 || mcs == 0 {
		t.Fatalf("generated %d/%d", worms, mcs)
	}
	if s.uniDelivered != worms-mcs {
		t.Fatalf("unicast conservation: generated %d, delivered %d", worms-mcs, s.uniDelivered)
	}
	stats := s.sys.Stats()
	if stats.GiveUps != 0 {
		t.Fatalf("protocol gave up: %+v", stats)
	}
	// Every transfer delivered to every member of its group exactly once.
	if int64(len(s.mcDelivered)) != mcs {
		t.Fatalf("multicast transfers: generated %d, observed %d", mcs, len(s.mcDelivered))
	}
	for id, copies := range s.mcDelivered {
		if copies != len(grpA.Members) && copies != len(grpB.Members) {
			t.Fatalf("transfer %d delivered %d copies", id, copies)
		}
	}
	s.quiescent()
}

func TestEndToEndTightBuffersStillConserves(t *testing.T) {
	// One-worm buffers force NACKs and retransmissions; reliability must
	// hold regardless.
	g := topology.Myrinet4()
	s := newStack(t, g, adapter.Config{
		Mode:        adapter.ModeTreeRooted,
		ClassBytes:  600,
		NackBackoff: 2048,
	})
	hosts := g.Hosts()
	grp := s.addGroup(0, hosts)
	for i := 0; i < 3; i++ {
		for _, h := range hosts[:4] {
			if _, err := s.sys.Adapter(h).SendMulticast(0, 500); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.k.Run(0); err != nil {
		t.Fatal(err)
	}
	stats := s.sys.Stats()
	if stats.GiveUps != 0 {
		t.Fatalf("gave up: %+v", stats)
	}
	if stats.Nacks == 0 {
		t.Fatalf("tight buffers produced no NACKs: %+v", stats)
	}
	want := 12 * len(grp.Members)
	got := 0
	for _, c := range s.mcDelivered {
		got += c
	}
	if got != want {
		t.Fatalf("deliveries %d, want %d", got, want)
	}
	s.quiescent()
}

func TestEndToEndRandomTopologiesProperty(t *testing.T) {
	// Property: on random connected topologies with random groups, the
	// reliable circuit protocol delivers every transfer to every member
	// and leaves no buffer pinned.
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%8) + 4
		g := topology.Random(n, 3, seed)
		s := newStack(t, g, adapter.Config{Mode: adapter.ModeCircuit})
		hosts := g.Hosts()
		r := rng.New(seed, 0xF00)
		perm := r.Perm(len(hosts))
		size := 2 + r.Intn(len(hosts)-1)
		var members []topology.NodeID
		for _, p := range perm[:size] {
			members = append(members, hosts[p])
		}
		grp, err := multicast.NewGroup(0, members)
		if err != nil {
			return false
		}
		if _, err := s.sys.AddGroup(grp); err != nil {
			return false
		}
		origin := members[r.Intn(len(members))]
		if _, err := s.sys.Adapter(origin).SendMulticast(0, 100+r.Intn(900)); err != nil {
			return false
		}
		if err := s.k.Run(0); err != nil {
			return false
		}
		for _, c := range s.mcDelivered {
			if c != len(members) {
				return false
			}
		}
		if s.sys.Stats().GiveUps != 0 {
			return false
		}
		for _, h := range hosts {
			c1, c2, _ := s.sys.Adapter(h).Pools()
			if c1.Used != 0 || c2.Used != 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMulticastHeaderDecoderNeverPanics(t *testing.T) {
	// Robustness: SplitHeader must reject (not panic on) arbitrary bytes;
	// the switch trusts only headers it built itself, but the codec is a
	// public API.
	err := quick.Check(func(seed uint64, lenRaw uint8) bool {
		r := rng.New(seed, 0xBAD)
		buf := make([]byte, int(lenRaw%64))
		for i := range buf {
			buf[i] = byte(r.Intn(256))
		}
		defer func() {
			if recover() != nil {
				t.Errorf("SplitHeader panicked on %v", buf)
			}
		}()
		splits, err := route.SplitHeader(buf)
		if err == nil {
			// Accepted headers must re-encode consistently.
			tr, derr := route.Decode(buf)
			if derr != nil || (tr == nil && len(splits) > 0) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapperFeedsRoutingOnEveryTopology(t *testing.T) {
	for name, g := range map[string]*topology.Graph{
		"torus8x8":   topology.Torus(8, 8, 1, 1),
		"shufflenet": topology.BidirShufflenet(2, 3, 1000),
		"myrinet4":   topology.Myrinet4(),
	} {
		t.Run(name, func(t *testing.T) {
			m, err := mapper.Run(g, nil)
			if err != nil {
				t.Fatal(err)
			}
			ud, err := updown.New(g, m.Root)
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := ud.NewTable(false)
			if err != nil {
				t.Fatal(err)
			}
			hosts := g.Hosts()
			var routes []updown.Route
			for i := 0; i < len(hosts); i++ {
				rt := tbl.Lookup(hosts[i], hosts[(i+1)%len(hosts)])
				if err := ud.VerifyRoute(rt); err != nil {
					t.Fatal(err)
				}
				routes = append(routes, rt)
			}
			if err := updown.VerifyDeadlockFree(g, routes); err != nil {
				t.Fatal(err)
			}
		})
	}
}
