package wormlan

// One benchmark per table/figure of the paper's evaluation, plus the
// DESIGN.md ablations.  Each benchmark iteration regenerates the figure at
// Quick scale and reports the headline quantity as a custom metric, so
// `go test -bench=. -benchmem` doubles as a smoke reproduction:
//
//	BenchmarkFig10   multicast latency vs load, 8x8 torus (3 schemes)
//	BenchmarkFig11   delay vs load and multicast proportion, shufflenet
//	BenchmarkFig12   prototype per-host throughput vs packet size
//	BenchmarkFig13   prototype per-host input-buffer loss
//
// Absolute byte-time numbers depend on the machine only through the seed-
// fixed simulation (Figs 10/11, deterministic) and wall-clock scheduling
// (Figs 12/13, measured); shapes are asserted by internal/core's tests.

import (
	"context"
	"testing"
	"time"

	"wormlan/internal/core"
	"wormlan/internal/sim"
	"wormlan/internal/topology"

	"wormlan/internal/adapter"
)

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.Fig10(core.Quick, 1996)
		if err != nil {
			b.Fatal(err)
		}
		// Report the heaviest-load latency of each scheme.
		last := map[string]float64{}
		for _, r := range rows {
			last[r.Scheme] = r.MCLatency
		}
		b.ReportMetric(last["hamiltonian"], "hc-sf-latency")
		b.ReportMetric(last["hamiltonian-cut-thru"], "hc-ct-latency")
		b.ReportMetric(last["tree-flood"], "tree-latency")
	}
}

// BenchmarkFig10Point benchmarks a single simulation point, the unit of
// work behind every Figure 10 cell.
func BenchmarkFig10Point(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := sim.Run(sim.Config{
			Graph:         topology.Torus(8, 8, 1, 1),
			Scheme:        sim.TreeSF,
			OfferedLoad:   0.02,
			MulticastProb: 0.1,
			NumGroups:     10,
			GroupSize:     10,
			Warmup:        20_000,
			Measure:       60_000,
			Seed:          uint64(i + 1),
			Adapter:       adapter.Config{PlainForwarding: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MCLatency.Mean(), "mc-latency")
	}
}

// BenchmarkFig10Parallel regenerates Figure 10 through the sweep engine
// at GOMAXPROCS workers; compare against BenchmarkFig10 (sequential) to
// measure the worker-pool speedup on this machine.  Rows are identical in
// both by the engine's determinism contract (DESIGN.md §8).
func BenchmarkFig10Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.Fig10With(context.Background(), core.Quick, 1996,
			core.Options{Workers: 0})
		if err != nil {
			b.Fatal(err)
		}
		last := map[string]float64{}
		for _, r := range rows {
			last[r.Scheme] = r.MCLatency
		}
		b.ReportMetric(last["tree-flood"], "tree-latency")
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.Fig11(core.Quick, 1996)
		if err != nil {
			b.Fatal(err)
		}
		var tree, hc float64
		var nTree, nHC int
		for _, r := range rows {
			if r.Scheme == "tree-flood" {
				tree += r.Delay
				nTree++
			} else {
				hc += r.Delay
				nHC++
			}
		}
		b.ReportMetric(tree/float64(nTree), "tree-delay")
		b.ReportMetric(hc/float64(nHC), "hc-delay")
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		single, _ := core.Fig12And13(core.Quick, 300*time.Millisecond)
		b.ReportMetric(single[len(single)-1].ThroughputMbps, "single-8K-Mbps")
		b.ReportMetric(single[0].ThroughputMbps, "single-1K-Mbps")
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, all := core.Fig12And13(core.Quick, 300*time.Millisecond)
		b.ReportMetric(all[len(all)-1].LossRate*100, "allsend-8K-loss-%")
		b.ReportMetric(all[len(all)-1].ThroughputMbps, "allsend-8K-Mbps")
	}
}

func BenchmarkAblationBufferClasses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.AblationBufferClasses(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r[0].GiveUps), "two-class-giveups")
		b.ReportMetric(float64(r[1].GiveUps), "one-class-giveups")
	}
}

func BenchmarkAblationOrdering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.AblationOrdering(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r[1].MCLatency-r[0].MCLatency, "ordering-cost")
	}
}

func BenchmarkAblationTreeConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.AblationTreeConstruction(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r[0].WireHops), "heap-tree-hops")
		b.ReportMetric(float64(r[1].WireHops), "greedy-tree-hops")
	}
}

func BenchmarkAblationFabricVsAdapter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.AblationFabricVsAdapter(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r[0].MCLatency, "fabric-mc-latency")
		b.ReportMetric(r[1].MCLatency, "adapter-tree-mc-latency")
	}
}

func BenchmarkAblationRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.AblationRouting()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r[0].MeanHops, "updown-hops")
		b.ReportMetric(r[1].MeanHops, "tree-only-hops")
	}
}
